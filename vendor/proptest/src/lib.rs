//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range /
//! tuple / `any` / `collection::vec` / `sample::select` strategies,
//! [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//! - **Deterministic**: each test's case stream is seeded from the
//!   test's module path and name, so failures reproduce exactly on
//!   every run and machine (no `proptest-regressions` files needed).
//! - **No shrinking**: a failing case panics with the plain
//!   `assert!` message. The deterministic seeding means the failing
//!   input can be re-generated and printed by re-running the test.
//! - `prop_assume!` skips the current case rather than drawing a
//!   replacement, so heavy assumption use reduces the effective case
//!   count instead of looping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the generator for case number `case` of the test named
    /// `name` (use `module_path!()` + the function name): stable
    /// across runs, distinct across tests and cases.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategy for "any value of `T`"; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over `T`'s whole domain (floats: `[0, 1)`).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "cannot sample empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier
        // simulator properties inside a reasonable `cargo test` wall
        // time while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running the body over seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Asserts a property within a proptest body (no shrinking: plain
/// `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_case("mod::t", 3);
        let mut b = crate::TestRng::for_case("mod::t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("mod::t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let s = (1usize..5, prop::collection::vec(any::<bool>(), 0..3));
        for _ in 0..1000 {
            let (n, v) = s.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!(v.len() < 3);
        }
        let sel = prop::sample::select(vec![2u32, 4, 8]);
        for _ in 0..100 {
            assert!([2u32, 4, 8].contains(&sel.generate(&mut rng)));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = crate::TestRng::from_seed(9);
        let s = (2usize..10).prop_flat_map(|n| prop::collection::vec(0u32..100, n));
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn macro_runs_and_binds(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x={} flip={}", x, flip);
            prop_assert_eq!(x + 1, 1 + x);
        }

        #[test]
        fn second_test_in_same_block(v in prop::collection::vec(1u8..10, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_ne!(v[0], 0);
        }
    }
}
