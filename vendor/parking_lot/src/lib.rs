//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the `parking_lot 0.12` calling convention the workspace
//! relies on: `lock()` / `read()` / `write()` return guards directly
//! (no `Result`). Lock poisoning is deliberately ignored — if a
//! thread panicked while holding the lock, the next locker simply
//! takes over the (fully written or torn-at-a-safe-point) value,
//! which is `parking_lot`'s behaviour too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader–writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard {
                inner: poisoned.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        *m.lock() = 7; // must not panic on poison
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
