//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) and reports a best-of-N wall-clock
//! timing per benchmark instead of criterion's full statistical
//! analysis. Good enough to keep `cargo bench` runnable and the
//! bench targets compiling; not a replacement for real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    best: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `f`, keeping the best (minimum) duration over a few
    /// iterations — the low-noise point estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed iterations each benchmark runs (the stub
    /// clamps this to keep `cargo bench` fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            best: Duration::MAX,
            // The stub's aim is a sanity-check timing, not statistics:
            // cap iterations so heavyweight benches stay quick.
            iters: (self.sample_size as u32).clamp(1, 10),
        };
        f(&mut bencher);
        self.report(&id.id, bencher.best);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, best: Duration) {
        let rate = match (self.throughput, best.as_secs_f64()) {
            (Some(Throughput::Elements(n)), secs) if secs > 0.0 => {
                format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6)
            }
            (Some(Throughput::Bytes(n)), secs) if secs > 0.0 => {
                format!("  ({:.3} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {best:?}{rate}", self.name);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 3,
            _criterion: self,
        }
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Criterion(offline stub)")
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(100));
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| p * 2);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }

    mod as_dependency {
        crate::criterion_group!(benches, super::noop_bench);
    }

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop").bench_function("id", |b| b.iter(|| 1));
    }

    #[test]
    fn macros_expand() {
        as_dependency::benches();
    }
}
