//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of exactly the `rand 0.8` API
//! surface it uses: the [`Rng`] / [`SeedableRng`] traits,
//! [`rngs::SmallRng`], range/uniform sampling and slice shuffling.
//! The generator is a splitmix64 stream — deterministic for a given
//! seed, statistically solid for simulation workloads, and *not*
//! cryptographically secure (neither is the real `SmallRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG's raw output
/// (the shim's analogue of `distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// A random-number generator. Implementors supply [`Rng::next_u64`];
/// everything else is derived.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over the type's domain,
    /// or `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. The same seed always
    /// yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable, non-cryptographic generator
    /// (splitmix64 stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffle and random selection for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
