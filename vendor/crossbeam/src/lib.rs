//! Offline stand-in for the `crossbeam` crate, covering the
//! `crossbeam::channel` API surface the engine uses.
//!
//! Backed by `std::sync::mpsc`: since Rust 1.72 the std channels are
//! the crossbeam implementation upstreamed, so semantics (and since
//! then, `Sender: Sync`) match. The one real difference — crossbeam
//! receivers are clonable (MPMC) — is not exercised by this
//! workspace; `Receiver` here is single-consumer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer channels with bounded and unbounded flavours.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel. Clonable; blocks on a full
    /// bounded channel.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let kind = match &self.kind {
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            };
            Sender { kind }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        /// Errors only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Bounded(tx) => tx.send(msg),
                SenderKind::Unbounded(tx) => tx.send(msg),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Iterator over received messages; ends when all senders drop.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    /// `cap == 0` gives a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let a = std::thread::spawn(move || tx2.send(21u32).unwrap());
        let b = std::thread::spawn(move || tx.send(21u32).unwrap());
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
        // Join before probing for disconnection: a sender thread may
        // outlive its send() by a beat, and try_recv would see Empty.
        a.join().unwrap();
        b.join().unwrap();
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 3);
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert!(r.is_err());
        drop(tx);
    }
}
