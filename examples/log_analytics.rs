//! Log analytics with incident bursts: per-service error rates, then
//! per-signature statistics, on a 5-server simulated cluster. Error
//! signatures belong to services (a stable, learnable correlation),
//! but incidents periodically flood one hot pair — the operational
//! version of the paper's skew discussion (§5.2): the routing tables
//! must deliver locality *and* keep the load balanced through bursts.
//!
//! ```bash
//! cargo run --release --example log_analytics
//! ```

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc::routing::{Manager, ManagerConfig, ReconfigPolicy};
use streamloc::workloads::{LogsConfig, LogsWorkload};

const SERVERS: usize = 5;
const PERIODS: usize = 8;
const WINDOWS_PER_PERIOD: usize = 50;

fn main() {
    let workload = LogsWorkload::new(LogsConfig {
        incident_rate: 5e-5,
        incident_length: 30_000,
        ..LogsConfig::default()
    });

    let mut builder = Topology::builder();
    let w = workload.clone();
    let source = builder.source("log_events", SERVERS, SourceRate::Saturate, move |i| {
        w.source(i)
    });
    let per_service = builder.stateful("per_service", SERVERS, CountOperator::factory());
    let per_signature = builder.stateful("per_signature", SERVERS, CountOperator::factory());
    builder.connect(source, per_service, Grouping::fields(0));
    let hop = builder.connect(per_service, per_signature, Grouping::fields(1));
    let topology = builder.build().expect("valid chain");

    let placement = Placement::aligned(&topology, SERVERS);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    let sig_pois = sim.poi_ids(sim.topology().po_by_name("per_signature").unwrap());

    println!("log analytics on {SERVERS} servers; incidents flood hot (service, signature) pairs\n");
    println!("period   throughput   locality   balance   action");
    for period in 0..PERIODS {
        let skip = sim.metrics().windows().len();
        sim.run(WINDOWS_PER_PERIOD);
        let throughput = sim.metrics().avg_throughput(skip + 10);
        let locality = sim.metrics().edge_locality(hop, skip + 10);
        let balance = sim.metrics().load_imbalance(&sig_pois, skip + 10);
        // Gain-gated reconfiguration: skip periods where nothing moved.
        let action = match manager.reconfigure_if_beneficial(&mut sim, ReconfigPolicy::default()) {
            Ok(Some(summary)) => format!("reconfigured ({} migrations)", summary.migrations),
            Ok(None) => "kept tables (no predicted gain)".to_owned(),
            Err(_) => "wave still running".to_owned(),
        };
        println!(
            "{period:>6}   {:>8.0}/s   {:>7.1}%   {:>7.3}   {action}",
            throughput,
            locality * 100.0,
            balance
        );
    }

    // Show the per-service error totals the pipeline maintained.
    let per_service_po = sim.topology().po_by_name("per_service").unwrap();
    let mut totals: Vec<(u64, u64)> = sim
        .poi_ids(per_service_po)
        .iter()
        .flat_map(|&p| {
            sim.poi_state(p)
                .iter()
                .map(|(k, v)| (k.value(), v.as_count().unwrap_or(0)))
                .collect::<Vec<_>>()
        })
        .collect();
    totals.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nnoisiest services:");
    for (service, events) in totals.iter().take(5) {
        println!("  service {service:>3}: {events} error events");
    }
}
