//! Quickstart: the whole system in ~80 lines.
//!
//! Deploys the paper's evaluation topology (source → two stateful
//! counting operators) on a simulated 4-server cluster, runs it under
//! default hash routing, then lets the locality-aware manager observe
//! key correlations, partition the key graph and deploy optimized
//! routing tables online — and prints the before/after throughput and
//! locality.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Key, Placement, SimConfig, Simulation, SourceRate,
    Topology, Tuple,
};
use streamloc::routing::{Manager, ManagerConfig};

fn main() {
    let servers = 4;

    // Build the application DAG: geo-tagged messages routed first by
    // region (field 0), then by topic (field 1). Topics are strongly
    // correlated with regions, which is what the optimizer exploits.
    let mut builder = Topology::builder();
    let source = builder.source("messages", servers, SourceRate::Saturate, move |i| {
        let mut c = i as u64;
        Box::new(move || {
            c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let region = c % 64;
            // Each region talks about its own topics 80% of the time.
            let topic = if c % 10 < 8 { region + 64 } else { 64 + (c >> 8) % 64 };
            Some(Tuple::new([Key::new(region), Key::new(topic)], 2048))
        })
    });
    let by_region = builder.stateful("by_region", servers, CountOperator::factory());
    let by_topic = builder.stateful("by_topic", servers, CountOperator::factory());
    builder.connect(source, by_region, Grouping::fields(0));
    builder.connect(by_region, by_topic, Grouping::fields(1));
    let topology = builder.build().expect("valid chain topology");
    let hop = topology
        .edge_between(by_region, by_topic)
        .expect("the instrumented hop");

    // Deploy on the simulated cluster (instance i on server i, as in
    // the paper) and attach the routing manager.
    let placement = Placement::aligned(&topology, servers);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(servers),
        placement,
        SimConfig::default(),
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());

    // Phase 1: hash routing, while the instrumentation gathers
    // (region, topic) pair statistics.
    sim.run(100); // 10 simulated seconds
    let hash_throughput = sim.metrics().avg_throughput(50);
    let hash_locality = sim.metrics().edge_locality(hop, 50);
    println!("phase 1 — hash-based fields grouping");
    println!("  throughput : {:>8.0} tuples/s", hash_throughput);
    println!("  locality   : {:>8.1} %", hash_locality * 100.0);
    println!("  pairs seen : {:>8}", manager.pairs_observed());

    // Phase 2: partition the key graph, deploy routing tables through
    // the online wave (state migrates seamlessly), keep running.
    let summary = manager.reconfigure(&mut sim).expect("no wave in flight");
    println!("\nreconfiguration deployed");
    println!(
        "  expected locality {:.1} %, imbalance {:.3}, {} key states migrated",
        summary.expected_locality * 100.0,
        summary.expected_imbalance,
        summary.migrations
    );

    let before = sim.metrics().windows().len();
    sim.run(100);
    let opt_throughput = sim.metrics().avg_throughput(before + 20);
    let opt_locality = sim.metrics().edge_locality(hop, before + 20);
    println!("\nphase 2 — locality-aware routing tables");
    println!("  throughput : {:>8.0} tuples/s", opt_throughput);
    println!("  locality   : {:>8.1} %", opt_locality * 100.0);
    println!(
        "\nspeedup ×{:.2}, locality {:.0}% → {:.0}%",
        opt_throughput / hash_throughput,
        hash_locality * 100.0,
        opt_locality * 100.0
    );
}
