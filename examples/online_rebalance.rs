//! Periodic online reconfiguration on a live drifting stream.
//!
//! Runs the Twitter-like workload *through the cluster simulator* (not
//! a replay): the manager reconfigures every few simulated seconds
//! while location↔hashtag correlations drift underneath it, printing
//! locality and load balance per period — the live-system counterpart
//! of Fig. 11.
//!
//! ```bash
//! cargo run --release --example online_rebalance
//! ```

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc::routing::{Manager, ManagerConfig};
use streamloc::workloads::{TwitterConfig, TwitterWorkload};

const SERVERS: usize = 6;
const PERIODS: usize = 12;
const WINDOWS_PER_PERIOD: usize = 40; // 4 simulated seconds per period

fn main() {
    // Compress the drift: a "week" of affinity changes passes every
    // few simulated seconds by generating small days.
    let workload = TwitterWorkload::new(TwitterConfig {
        locations: 100,
        hashtags: 5_000,
        tuples_per_day: 4_000,
        fresh_per_week: 100,
        ..TwitterConfig::default()
    });

    let mut builder = Topology::builder();
    let w = workload.clone();
    let source = builder.source("tweets", SERVERS, SourceRate::Saturate, move |i| {
        w.clone().source(i, SERVERS, 512)
    });
    let by_location = builder.stateful("by_location", SERVERS, CountOperator::factory());
    let by_hashtag = builder.stateful("by_hashtag", SERVERS, CountOperator::factory());
    builder.connect(source, by_location, Grouping::fields(0));
    builder.connect(by_location, by_hashtag, Grouping::fields(1));
    let topology = builder.build().expect("valid chain topology");
    let hop = topology.edge_between(by_location, by_hashtag).unwrap();

    let placement = Placement::aligned(&topology, SERVERS);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(SERVERS),
        placement,
        SimConfig::default(),
    );
    let mut manager = Manager::attach(&mut sim, ManagerConfig::default());
    let hashtag_pois = sim.poi_ids(sim.topology().po_by_name("by_hashtag").unwrap());

    println!("live online optimization, {SERVERS} servers, reconfiguration every period\n");
    println!("period   locality   load-balance   throughput     migrations");
    for period in 0..PERIODS {
        let skip = sim.metrics().windows().len();
        sim.run(WINDOWS_PER_PERIOD);
        let locality = sim.metrics().edge_locality(hop, skip + 5);
        let balance = sim.metrics().load_imbalance(&hashtag_pois, skip + 5);
        let throughput = sim.metrics().avg_throughput(skip + 5);
        let migrations = match manager.reconfigure(&mut sim) {
            Ok(summary) => summary.migrations.to_string(),
            Err(_) => "wave busy".to_owned(),
        };
        println!(
            "{period:>6}   {:>7.1}%   {:>12.3}   {:>8.0}/s   {:>10}",
            locality * 100.0,
            balance,
            throughput,
            migrations
        );
    }

    println!(
        "\nhash-routing reference locality would be ~{:.1}% on {SERVERS} servers",
        100.0 / SERVERS as f64
    );
}
