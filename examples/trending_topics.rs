//! Trending topics over a drifting Twitter-like stream.
//!
//! The paper's running example (§3.2): geolocated messages carrying
//! hashtags are routed first by location, then by hashtag, to maintain
//! per-region trending statistics. Associations between locations and
//! hashtags *drift* week over week (Fig. 10), so a single offline
//! routing configuration decays while weekly online reconfiguration
//! keeps locality high (Fig. 11a).
//!
//! This example replays 16 weeks of the generated stream through
//! three routing policies — hash, offline (one configuration computed
//! from week 0) and online (recomputed every week) — and prints the
//! weekly locality of each, together with the flash events that make
//! the offline tables stale.
//!
//! ```bash
//! cargo run --release --example trending_topics
//! ```

use streamloc::engine::{HashRouter, Key, KeyRouter};
use streamloc::partition::{KeyGraph, MultilevelPartitioner};
use streamloc::routing::RoutingTable;
use streamloc::sketch::SpaceSaving;
use streamloc::workloads::{TwitterConfig, TwitterWorkload};

const SERVERS: usize = 6;
const WEEKS: usize = 16;
const SKETCH_CAPACITY: usize = 50_000;

/// Builds location/hashtag routing tables from one week of pairs.
fn tables_from(batch: &[(Key, Key)]) -> (RoutingTable, RoutingTable) {
    let mut sketch = SpaceSaving::new(SKETCH_CAPACITY);
    for &pair in batch {
        sketch.offer(pair);
    }
    let mut graph = KeyGraph::new();
    for entry in sketch.iter() {
        let (loc, tag) = *entry.key;
        graph.add_pair(loc, tag, entry.count);
    }
    let assignment = graph.partition(&MultilevelPartitioner::default(), SERVERS, 1.03, 42);
    let locations = assignment
        .left_iter()
        .map(|(&k, part)| (k, part))
        .collect();
    let hashtags = assignment
        .right_iter()
        .map(|(&k, part)| (k, part))
        .collect();
    (locations, hashtags)
}

/// Fraction of pairs whose two keys route to the same server.
fn locality(batch: &[(Key, Key)], tables: Option<&(RoutingTable, RoutingTable)>) -> f64 {
    let local = batch
        .iter()
        .filter(|&&(loc, tag)| match tables {
            Some((locs, tags)) => locs.route(loc, SERVERS) == tags.route(tag, SERVERS),
            None => HashRouter.route(loc, SERVERS) == HashRouter.route(tag, SERVERS),
        })
        .count();
    local as f64 / batch.len() as f64
}

fn main() {
    let mut workload = TwitterWorkload::new(TwitterConfig::default());

    println!("trending topics on {SERVERS} servers, {WEEKS} weeks of stream\n");
    println!("week   hash   offline   online   (locality of the location→hashtag hop)");

    let mut offline: Option<(RoutingTable, RoutingTable)> = None;
    let mut online: Option<(RoutingTable, RoutingTable)> = None;
    let mut sums = [0.0f64; 3];
    for week in 0..WEEKS {
        let batch = workload.week(week);
        let h = locality(&batch, None);
        let off = locality(&batch, offline.as_ref());
        let on = locality(&batch, online.as_ref());
        println!("{week:>4}  {:>5.1}%  {:>7.1}%  {:>6.1}%", h * 100.0, off * 100.0, on * 100.0);
        sums[0] += h;
        sums[1] += off;
        sums[2] += on;

        // Offline: learn once from the first week, never update.
        if week == 0 {
            offline = Some(tables_from(&batch));
        }
        // Online: relearn from every week just ended.
        online = Some(tables_from(&batch));
    }
    println!(
        "\navg   {:>5.1}%  {:>7.1}%  {:>6.1}%",
        sums[0] / WEEKS as f64 * 100.0,
        sums[1] / WEEKS as f64 * 100.0,
        sums[2] / WEEKS as f64 * 100.0,
    );

    // Show why: a flash event binds a hot hashtag to one location for
    // a few days — exactly Fig. 10's #nevertrump pattern.
    println!("\nflash events (hashtag ↔ location spikes the offline tables miss):");
    for week in [4usize, 8, 12] {
        for ev in workload.events(week) {
            println!(
                "  week {week}: #tag{:<5} spikes in location {:<4} for {} days (day {})",
                ev.hashtag, ev.location, ev.duration_days, ev.start_day
            );
        }
    }
}
