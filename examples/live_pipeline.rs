//! The full system on REAL threads: the live multi-threaded runtime
//! executes the trending-topics pipeline, the SpaceSaving trackers
//! collect pair statistics from the worker threads, the key graph is
//! partitioned, and the new routing tables are deployed through the
//! online reconfiguration wave — all while tuples keep flowing.
//!
//! (The other examples use the deterministic cluster simulator; this
//! one demonstrates that the same Topology/Operator/Router API runs on
//! actual concurrency, with the same no-loss guarantees.)
//!
//! ```bash
//! cargo run --release --example live_pipeline
//! ```

use std::sync::Arc;

use streamloc::engine::{
    CountOperator, Grouping, HashRouter, Key, KeyRouter, LiveConfig, LiveReconfig, LiveRuntime,
    PoId, Placement, SourceRate, Topology, Tuple,
};
use streamloc::partition::{KeyGraph, MultilevelPartitioner};
use streamloc::routing::{PairTracker, RoutingTable};

const SERVERS: usize = 4;
const REGIONS: u64 = 32;
const TOPICS: u64 = 256;
const TUPLES_PER_SOURCE: u64 = 400_000;

fn main() {
    // Regions and topics with a strong, learnable correlation.
    let mut builder = Topology::builder();
    let source = builder.source(
        "messages",
        SERVERS,
        SourceRate::PerSecond(400_000.0),
        move |i| {
            let mut c = i as u64;
            let mut left = TUPLES_PER_SOURCE;
            Box::new(move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                c = c.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let region = (c >> 5) % REGIONS;
                let topic = if c % 10 < 8 {
                    REGIONS + region * (TOPICS / REGIONS) + (c >> 22) % (TOPICS / REGIONS)
                } else {
                    REGIONS + (c >> 13) % TOPICS
                };
                Some(Tuple::new([Key::new(region), Key::new(topic)], 256))
            })
        },
    );
    let by_region = builder.stateful("by_region", SERVERS, CountOperator::factory());
    let by_topic = builder.stateful("by_topic", SERVERS, CountOperator::factory());
    let first_hop = builder.connect(source, by_region, Grouping::fields(0));
    let hop = builder.connect(by_region, by_topic, Grouping::fields(1));
    let topology = builder.build().expect("valid chain");

    // Install a SpaceSaving pair tracker on every by_region instance.
    let trackers: Vec<_> = (0..SERVERS).map(|_| PairTracker::new(50_000)).collect();
    let observers = trackers
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (
                by_region,
                i,
                hop,
                1, // observe the topic field
                Box::new(t.handle()) as Box<dyn streamloc::engine::PairObserver>,
            )
        })
        .collect();

    let placement = Placement::aligned(&topology, SERVERS);
    let runtime = LiveRuntime::start_with_observers(
        topology,
        placement,
        SERVERS,
        LiveConfig::default(),
        observers,
    );

    // Phase 1: run under hash routing while statistics accumulate.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let hash_locality = runtime.edge_locality(hop);
    let pairs: u64 = trackers.iter().map(|t| t.total()).sum();
    println!("phase 1 (hash routing): locality {:.1}%, {pairs} pairs observed", hash_locality * 100.0);

    // Manager-by-hand: merge statistics, partition, build tables.
    let mut graph = KeyGraph::new();
    for tracker in &trackers {
        for entry in tracker.snapshot().iter() {
            let (region, topic) = *entry.key;
            graph.add_pair(region, topic, entry.count);
        }
    }
    let assignment = graph.partition(&MultilevelPartitioner::default(), SERVERS, 1.03, 7);
    println!(
        "partitioned {} regions × {} topics: expected locality {:.1}%",
        graph.left_len(),
        graph.right_len(),
        assignment.expected_locality() * 100.0
    );
    let region_table: RoutingTable = assignment.left_iter().map(|(&k, p)| (k, p)).collect();
    let topic_table: RoutingTable = assignment.right_iter().map(|(&k, p)| (k, p)).collect();

    // Migrations for by_topic keys: old owner by hash, new by table.
    let migrations: Vec<(PoId, Key, usize, usize)> = topic_table
        .iter()
        .filter_map(|(key, new)| {
            let old = HashRouter.route(key, SERVERS) as usize;
            (old != new as usize).then_some((by_topic, key, old, new as usize))
        })
        .collect();
    let region_migrations: Vec<(PoId, Key, usize, usize)> = region_table
        .iter()
        .filter_map(|(key, new)| {
            let old = HashRouter.route(key, SERVERS) as usize;
            (old != new as usize).then_some((by_region, key, old, new as usize))
        })
        .collect();
    let n_migrations = migrations.len() + region_migrations.len();

    // Phase 2: deploy through the live wave (stream keeps running).
    let start = std::time::Instant::now();
    runtime.reconfigure(LiveReconfig {
        routers: vec![
            (source, first_hop, Arc::new(region_table)),
            (by_region, hop, Arc::new(topic_table)),
        ],
        migrations: migrations.into_iter().chain(region_migrations).collect(),
    });
    println!(
        "reconfigured live in {:.1} ms ({n_migrations} key states migrated)",
        start.elapsed().as_secs_f64() * 1e3
    );

    // Reset locality counters by measuring the delta from here.
    let before = runtime.edge_locality(hop);
    std::thread::sleep(std::time::Duration::from_millis(400));
    let after = runtime.edge_locality(hop);
    println!(
        "phase 2 (locality-aware tables): cumulative locality {:.1}% → {:.1}% and climbing",
        before * 100.0,
        after * 100.0
    );

    // Drain and verify nothing was lost.
    runtime.stop();
    let reports = runtime.join();
    let emitted: u64 = reports
        .iter()
        .filter(|r| r.po == source)
        .map(|r| r.processed)
        .sum();
    let counted: u64 = reports
        .iter()
        .filter(|r| r.po == by_topic)
        .flat_map(|r| r.state.values())
        .filter_map(streamloc::engine::StateValue::as_count)
        .sum();
    println!("\ndrained: {emitted} emitted, {counted} counted at the sink");
    assert_eq!(emitted, counted, "live migration must not lose a tuple");
    println!("every tuple accounted for across the live migration ✓");
}
