//! Geo-tagged photo statistics on a Flickr-like stream (paper §4.4).
//!
//! Counts pictures per user tag and per country on a 6-server
//! cluster, comparing a run without reconfiguration against a run
//! where the manager deploys locality-aware tables mid-stream — the
//! setting of Fig. 13, with the paper's 30-minute runs compressed to
//! 30 simulated seconds (1 s ↔ 1 min; shapes are preserved, see
//! EXPERIMENTS.md).
//!
//! ```bash
//! cargo run --release --example geo_tags
//! ```

use streamloc::engine::{
    ClusterSpec, CountOperator, Grouping, Placement, SimConfig, Simulation, SourceRate, Topology,
};
use streamloc::routing::{Manager, ManagerConfig};
use streamloc::workloads::{FlickrConfig, FlickrWorkload};

const SERVERS: usize = 6;
const TOTAL_SECONDS: usize = 30;
const RECONFIG_AT_SECOND: usize = 10;

fn build_sim(padding: u32) -> Simulation {
    let workload = FlickrWorkload::new(FlickrConfig {
        padding,
        ..FlickrConfig::default()
    });
    let mut builder = Topology::builder();
    let source = builder.source("photos", SERVERS, SourceRate::Saturate, move |i| {
        workload.source(i)
    });
    let by_tag = builder.stateful("by_tag", SERVERS, CountOperator::factory());
    let by_country = builder.stateful("by_country", SERVERS, CountOperator::factory());
    builder.connect(source, by_tag, Grouping::fields(0));
    builder.connect(by_tag, by_country, Grouping::fields(1));
    let topology = builder.build().expect("valid chain topology");
    let placement = Placement::aligned(&topology, SERVERS);
    Simulation::new(
        topology,
        ClusterSpec::lan_1g(SERVERS),
        placement,
        SimConfig::default(),
    )
}

fn main() {
    let padding = 4 * 1024;
    let windows_per_second = 10;

    // Run A: plain hash routing for the whole run.
    let mut plain = build_sim(padding);
    plain.run(TOTAL_SECONDS * windows_per_second);

    // Run B: identical, but the manager reconfigures at t = 10 s.
    let mut reconf = build_sim(padding);
    let mut manager = Manager::attach(&mut reconf, ManagerConfig::default());
    reconf.run(RECONFIG_AT_SECOND * windows_per_second);
    let summary = manager
        .reconfigure(&mut reconf)
        .expect("no wave in flight");
    reconf.run((TOTAL_SECONDS - RECONFIG_AT_SECOND) * windows_per_second);

    println!(
        "flickr-like stream, {SERVERS} servers, 1 Gb/s, {padding} B tuples; reconfiguration at t={RECONFIG_AT_SECOND}s"
    );
    println!(
        "(expected locality {:.0}%, {} key states migrated)\n",
        summary.expected_locality * 100.0,
        summary.migrations
    );
    println!("time   w/o reconf   w/ reconf   (Ktuples/s)");
    let plain_series = plain.metrics().throughput_series();
    let reconf_series = reconf.metrics().throughput_series();
    for second in (0..TOTAL_SECONDS).step_by(2) {
        let avg = |series: &[f64]| {
            let lo = second * windows_per_second;
            let hi = (second + 2) * windows_per_second;
            series[lo..hi.min(series.len())].iter().sum::<f64>()
                / (hi.min(series.len()) - lo) as f64
        };
        println!(
            "{:>3}s   {:>9.1}   {:>9.1}{}",
            second,
            avg(&plain_series) / 1e3,
            avg(&reconf_series) / 1e3,
            if second == RECONFIG_AT_SECOND { "   ← reconfiguration" } else { "" }
        );
    }

    let skip = (RECONFIG_AT_SECOND + 2) * windows_per_second;
    let plain_avg = plain.metrics().avg_throughput(skip);
    let reconf_avg = reconf.metrics().avg_throughput(skip);
    println!(
        "\nsteady state after t={}s: {:.1} → {:.1} Ktuples/s (×{:.2})",
        RECONFIG_AT_SECOND,
        plain_avg / 1e3,
        reconf_avg / 1e3,
        reconf_avg / plain_avg
    );

    // The by_country statistics survive the migration: show the top
    // countries aggregated across instances.
    let by_country = reconf.topology().po_by_name("by_country").unwrap();
    let mut totals: Vec<(u64, u64)> = Vec::new(); // (country, count)
    for poi in reconf.poi_ids(by_country) {
        for (k, v) in reconf.poi_state(poi) {
            totals.push((k.value(), v.as_count().unwrap_or(0)));
        }
    }
    totals.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\ntop countries by photo count (state preserved across migration):");
    for (country, count) in totals.iter().take(5) {
        println!("  country {country:>4}: {count} photos");
    }
}
