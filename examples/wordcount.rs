//! The classic streaming wordcount of paper §2 (Figs. 1–2): sentences
//! → extract words (stateless) → lowercase (stateless) → count
//! (stateful) — demonstrating shuffle, local-or-shuffle and fields
//! grouping, and why local-or-shuffle spares the stateless hops while
//! fields grouping is where locality is lost.
//!
//! ```bash
//! cargo run --release --example wordcount
//! ```

use streamloc::engine::{
    ClusterSpec, CountOperator, FnOperator, Grouping, KeyInterner, OpContext, Placement,
    SimConfig, Simulation, SourceRate, Topology, Tuple,
};

const SENTENCES: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "THE DOG barks AT the FOX",
    "a lazy stream processes the quick data",
    "Streams of WORDS flow to the COUNT operator",
    "the fox and the dog count words all day",
];

fn main() {
    let servers = 3;

    // Intern every lowercase word up front; tuples carry word keys
    // (field 0: raw case variant, field 1: lowercase form).
    let mut interner = KeyInterner::new();
    let mut tuples = Vec::new();
    for sentence in SENTENCES.iter().cycle().take(40_000) {
        for word in sentence.split_whitespace() {
            let raw = interner.intern(word);
            let lower = interner.intern(&word.to_lowercase());
            tuples.push(Tuple::new([raw, lower], word.len() as u32));
        }
    }
    let total_words = tuples.len();

    let mut builder = Topology::builder();
    let shared = std::sync::Arc::new(tuples);
    let source = builder.source("sentences", servers, SourceRate::Saturate, move |i| {
        let data = std::sync::Arc::clone(&shared);
        let mut pos = i;
        let stride = servers;
        Box::new(move || {
            let t = data.get(pos).copied();
            pos += stride;
            t
        })
    });
    // B: normalize to lowercase — stateless, so local-or-shuffle keeps
    // it free of network traffic (paper §2.2).
    let lower = builder.stateless(
        "lowercase",
        servers,
        Box::new(|_| {
            Box::new(FnOperator(|t: Tuple, ctx: &mut OpContext<'_>| {
                // Keep only the lowercase key for the counting hop.
                let lowered = t.key(1);
                ctx.emit(Tuple::new([lowered], t.payload_bytes()));
            }))
        }),
    );
    // C: count word frequencies — stateful, fields grouping required.
    let count = builder.stateful("count", servers, CountOperator::factory());
    builder.connect(source, lower, Grouping::LocalOrShuffle);
    let fields_hop = builder.connect(lower, count, Grouping::fields(0));
    let topology = builder.build().expect("valid wordcount topology");

    let placement = Placement::aligned(&topology, servers);
    let mut sim = Simulation::new(
        topology,
        ClusterSpec::lan_10g(servers),
        placement,
        SimConfig::default(),
    );
    let windows = sim.run_until_drained(10_000);

    println!(
        "processed {total_words} words in {windows} windows ({} servers)",
        servers
    );
    println!(
        "stateless hop locality: 100% by construction (local-or-shuffle)"
    );
    println!(
        "fields hop locality   : {:.1}% (hash over {} distinct words)",
        sim.metrics().edge_locality(fields_hop, 0) * 100.0,
        interner.len()
    );

    // Gather the counts back from the distributed state.
    let count_po = sim.topology().po_by_name("count").unwrap();
    let mut totals: Vec<(String, u64)> = Vec::new();
    for poi in sim.poi_ids(count_po) {
        for (&key, value) in sim.poi_state(poi) {
            let word = interner.resolve(key).unwrap_or("?").to_owned();
            totals.push((word, value.as_count().unwrap_or(0)));
        }
    }
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\ntop words:");
    for (word, n) in totals.iter().take(8) {
        println!("  {word:<10} {n}");
    }
    let counted: u64 = totals.iter().map(|&(_, n)| n).sum();
    assert_eq!(counted, total_words as u64, "every word counted exactly once");
}
