//! Fault injection and failure recovery, end to end.
//!
//! Drives the robustness layer through three scenarios on a small
//! S → A → B chain:
//!
//! 1. a POI crash during the ⑤ `PROPAGATE` phase plus a dropped
//!    ⑥ `MIGRATE`, run twice to show the failures are deterministic;
//! 2. a manager death mid-wave, showing the wave retry → abort →
//!    rollback path and graceful degradation to pure hash routing
//!    with zero lost state;
//! 3. a seeded random fault plan ([`FaultPlan::random`]) — pass a
//!    seed as the first argument to explore others.
//!
//! ```bash
//! cargo run --release --example fault_recovery [seed]
//! ```
//!
//! [`FaultPlan::random`]: streamloc::engine::FaultPlan::random

use std::collections::HashMap;
use std::sync::Arc;
use streamloc::engine::obs::export::write_jsonl;
use streamloc::engine::{
    ClusterSpec, ControlClass, CountOperator, FaultEvent, FaultPlan, Grouping, HashRouter, Key,
    KeyRouter, ModuloRouter, Placement, ReconfigError, ReconfigPlan, SimConfig, Simulation,
    SourceRate, Topology, TraceEvent, TraceEventKind, Tuple, WaveConfig,
};

const KEYS: u64 = 12;
const PARALLELISM: usize = 3;
const TOTAL: u64 = 18_000;

/// Finite S → A → B chain: every source instance emits a fixed quota,
/// so the pipeline drains and state conservation is checkable.
fn finite_sim() -> Simulation {
    let mut b = Topology::builder();
    let s = b.source("S", PARALLELISM, SourceRate::PerSecond(20_000.0), |i| {
        let mut c = i as u64;
        let mut left = TOTAL / PARALLELISM as u64;
        Box::new(move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            c = c.wrapping_add(0x9e37_79b9);
            let k = c % KEYS;
            Some(Tuple::new([Key::new(k), Key::new(k)], 64))
        })
    });
    let a = b.stateful("A", PARALLELISM, CountOperator::factory());
    let bb = b.stateful("B", PARALLELISM, CountOperator::factory());
    b.connect(s, a, Grouping::fields(0));
    b.connect(a, bb, Grouping::fields(1));
    let topo = b.build().unwrap();
    let placement = Placement::aligned(&topo, PARALLELISM);
    Simulation::new(
        topo,
        ClusterSpec::lan_10g(PARALLELISM),
        placement,
        SimConfig::default(),
    )
}

/// Hash → modulo rekeying of A's input edge: migrates every key whose
/// hash owner differs from its modulo owner.
fn modulo_plan(sim: &Simulation) -> ReconfigPlan {
    let topo = sim.topology();
    let dest = topo.po_by_name("A").unwrap();
    let edge = topo.in_edges(dest)[0];
    let src = topo.edge(edge).from();
    let dest_pois = sim.poi_ids(dest);
    let routers = sim
        .poi_ids(src)
        .into_iter()
        .map(|p| (p, edge, Arc::new(ModuloRouter) as Arc<dyn KeyRouter>))
        .collect();
    let hash = HashRouter;
    let migrations = (0..KEYS)
        .filter_map(|k| {
            let key = Key::new(k);
            let old = hash.route(key, PARALLELISM) as usize;
            let new = (k % PARALLELISM as u64) as usize;
            (old != new).then(|| (dest_pois[old], key, dest_pois[new]))
        })
        .collect();
    ReconfigPlan { routers, migrations }
}

/// Sorted per-instance A-state plus the sink total — the facts two
/// deterministic runs must agree on.
type Fingerprint = (u64, Vec<Vec<(Key, u64)>>, Vec<ReconfigError>);

fn fingerprint(sim: &Simulation) -> Fingerprint {
    let a_po = sim.topology().po_by_name("A").unwrap();
    let mut states = Vec::new();
    for poi in sim.poi_ids(a_po) {
        let mut m: Vec<(Key, u64)> = sim
            .poi_state(poi)
            .iter()
            .map(|(&k, v)| (k, v.as_count().unwrap()))
            .collect();
        m.sort_unstable();
        states.push(m);
    }
    let errors = sim
        .metrics()
        .windows()
        .iter()
        .flat_map(|w| w.reconfig_errors.iter().copied())
        .collect();
    (sim.metrics().total_sink(), states, errors)
}

fn fault_totals(sim: &Simulation) -> (u64, u64, u64) {
    let ws = sim.metrics().windows();
    (
        ws.iter().map(|w| w.dropped_control).sum(),
        ws.iter().map(|w| w.delayed_control).sum(),
        ws.iter().map(|w| w.crashes).sum(),
    )
}

fn crash_plus_dropped_migrate() -> (Fingerprint, Vec<TraceEvent>) {
    let mut sim = finite_sim();
    sim.enable_tracing(8_192);
    sim.set_auto_checkpoint(Some(2));
    let a_poi = sim.poi_ids(sim.topology().po_by_name("A").unwrap())[1];
    sim.install_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::CrashPoi {
                poi: a_poi.index(),
                window: 5,
            })
            .with(FaultEvent::DropControl {
                class: ControlClass::Migrate,
                occurrence: 0,
            }),
    );
    sim.run(4);
    sim.start_reconfiguration(modulo_plan(&sim)).unwrap();
    let spent = sim.run_until_drained(800);
    let (dropped, delayed, crashes) = fault_totals(&sim);
    println!(
        "    drained in {spent} windows  (crashes {crashes}, dropped ctl {dropped}, delayed ctl {delayed})"
    );

    // The trace must agree with the metrics log and attribute every
    // fault and protocol step to the right wave and instance.
    let events = sim.take_trace_events();
    let crashed: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::PoiCrashed { poi } => Some(poi),
            _ => None,
        })
        .collect();
    assert_eq!(crashed, vec![a_poi.index()], "crash mis-attributed");
    assert_eq!(crashed.len() as u64, crashes);
    let dropped_traced = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::ControlDropped {
                    class: ControlClass::Migrate
                }
            )
        })
        .count() as u64;
    assert_eq!(dropped_traced, dropped, "dropped ⑥ missing from trace");
    for step in [
        "get_metrics",
        "send_metrics",
        "wave_started",
        "send_reconf",
        "ack_reconf",
        "propagate",
        "wave_applied",
        "migrate_sent",
        "migrate_applied",
    ] {
        assert!(
            events.iter().any(|e| e.kind.name() == step),
            "protocol step {step} missing from trace"
        );
    }
    // One wave ran: everything wave-attributed carries its id.
    assert!(events
        .iter()
        .filter_map(|e| e.wave)
        .all(|w| w == 0), "all events must belong to wave 0");
    let a_pois: Vec<usize> = sim
        .poi_ids(sim.topology().po_by_name("A").unwrap())
        .iter()
        .map(|p| p.index())
        .collect();
    assert!(
        events.iter().all(|e| match e.kind {
            TraceEventKind::MigrateSent { from, to, .. } =>
                a_pois.contains(&from) && a_pois.contains(&to),
            TraceEventKind::MigrateApplied { poi, .. } => a_pois.contains(&poi),
            _ => true,
        }),
        "migrations must stay within A's instances"
    );

    (fingerprint(&sim), events)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: seed must be a u64, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(42);

    println!("== 1. POI crash during PROPAGATE + dropped MIGRATE ==");
    println!("  run #1:");
    let (first, trace) = crash_plus_dropped_migrate();
    println!("  run #2:");
    let (second, trace2) = crash_plus_dropped_migrate();
    println!(
        "  sink tuples {} | outcomes identical: {}",
        first.0,
        first == second
    );
    assert_eq!(first, second, "fault injection must be deterministic");
    assert_eq!(trace, trace2, "event traces must be deterministic too");
    let trace_path = std::path::Path::new("results").join("fault_recovery_trace.jsonl");
    std::fs::create_dir_all("results").expect("create results directory");
    let file = std::fs::File::create(&trace_path).expect("create trace dump");
    write_jsonl(&trace, std::io::BufWriter::new(file)).expect("write trace dump");
    println!(
        "  trace: {} events -> {}",
        trace.len(),
        trace_path.display()
    );

    println!("\n== 2. manager death mid-wave ==");
    let mut sim = finite_sim();
    sim.enable_tracing(8_192);
    sim.install_fault_plan(FaultPlan::new().with(FaultEvent::KillManager { window: 4 }));
    sim.run(4);
    let wave = WaveConfig {
        deadline_windows: 6,
        max_retries: 2,
        backoff: 2,
    };
    let wave_start = sim.window_index();
    sim.start_reconfiguration_with(modulo_plan(&sim), wave).unwrap();
    let spent = sim.run_until_drained(800);
    let abort_window = sim
        .metrics()
        .windows()
        .iter()
        .position(|w| w.reconfig_errors.contains(&ReconfigError::Aborted));
    println!(
        "  wave started at window {wave_start}, aborted at {abort_window:?}, drained in {spent} windows"
    );
    println!(
        "  manager down: {} | degraded to hash routing: {}",
        sim.manager_down(),
        sim.degraded_to_hash()
    );
    let refused = sim.start_reconfiguration(ReconfigPlan::empty()).is_err();
    println!("  further waves refused: {refused}");
    let a_po = sim.topology().po_by_name("A").unwrap();
    let mut owner: HashMap<Key, usize> = HashMap::new();
    let mut total = 0u64;
    for poi in sim.poi_ids(a_po) {
        for (&k, v) in sim.poi_state(poi) {
            assert!(owner.insert(k, poi.index()).is_none(), "split key {k}");
            total += v.as_count().unwrap();
        }
    }
    println!("  A-state conservation: {total}/{TOTAL} tuples accounted for");
    assert_eq!(total, TOTAL, "manager death must not lose state");
    let events = sim.take_trace_events();
    for step in ["manager_killed", "wave_aborted", "degraded_to_hash"] {
        assert!(
            events.iter().any(|e| e.kind.name() == step),
            "failure path event {step} missing from trace"
        );
    }
    println!("  failure path traced: manager_killed → wave_aborted → degraded_to_hash");

    println!("\n== 3. random fault plan, seed {seed} ==");
    let mut sim = finite_sim();
    sim.set_auto_checkpoint(Some(3));
    sim.install_fault_plan(FaultPlan::random(seed, PARALLELISM * 3, 25));
    sim.run(4);
    // The seed may already have killed the manager; a refused wave is
    // a legitimate outcome.
    match sim.start_reconfiguration(modulo_plan(&sim)) {
        Ok(()) => println!("  wave accepted"),
        Err(e) => println!("  wave refused ({e})"),
    }
    let spent = sim.run_until_drained(800);
    let (dropped, delayed, crashes) = fault_totals(&sim);
    println!(
        "  drained in {spent} windows | sink {} | crashes {crashes}, dropped ctl {dropped}, delayed ctl {delayed}",
        sim.metrics().total_sink()
    );
    println!(
        "  manager down: {} | degraded: {} | errors: {:?}",
        sim.manager_down(),
        sim.degraded_to_hash(),
        fingerprint(&sim).2
    );
}
